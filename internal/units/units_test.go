package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAddSub(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(150 * Millisecond)
	if got := t1.Sub(t0); got != 150*Millisecond {
		t.Fatalf("Sub = %v, want 150ms", got)
	}
	if got := t1.Seconds(); math.Abs(got-0.150) > 1e-12 {
		t.Fatalf("Seconds = %v, want 0.150", got)
	}
}

func TestDurationFromSeconds(t *testing.T) {
	cases := []struct {
		s    float64
		want Duration
	}{
		{1.0, Second},
		{0.001, Millisecond},
		{0.150, 150 * Millisecond},
		{0, 0},
	}
	for _, c := range cases {
		if got := DurationFromSeconds(c.s); got != c.want {
			t.Errorf("DurationFromSeconds(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		d := Duration(ms) * Millisecond
		return DurationFromSeconds(d.Seconds()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransmissionTime(t *testing.T) {
	// 1500 bytes at 12 Mbps = 1 ms.
	if got := (12 * Mbps).TransmissionTime(1500); got != Millisecond {
		t.Fatalf("TransmissionTime = %v, want 1ms", got)
	}
	// 1500 bytes at 1.5 Mbps = 8 ms.
	if got := (1500 * Kbps).TransmissionTime(1500); got != 8*Millisecond {
		t.Fatalf("TransmissionTime = %v, want 8ms", got)
	}
}

func TestTransmissionTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rate")
		}
	}()
	Rate(0).TransmissionTime(1500)
}

func TestRateFromBytes(t *testing.T) {
	// 1,500,000 bytes over 1 second = 12 Mbps.
	if got := RateFromBytes(1_500_000, Second); got != 12*Mbps {
		t.Fatalf("RateFromBytes = %v, want 12Mbps", got)
	}
	if got := RateFromBytes(100, 0); got != 0 {
		t.Fatalf("RateFromBytes with zero duration = %v, want 0", got)
	}
	if got := RateFromBytes(100, -Second); got != 0 {
		t.Fatalf("RateFromBytes with negative duration = %v, want 0", got)
	}
}

func TestBDP(t *testing.T) {
	// 32 Mbps * 150 ms = 600,000 bytes = 400 packets of 1500 B.
	if got := BDPBytes(32*Mbps, 150*Millisecond); got != 600_000 {
		t.Fatalf("BDPBytes = %d, want 600000", got)
	}
	if got := BDPPackets(32*Mbps, 150*Millisecond, 1500); got != 400 {
		t.Fatalf("BDPPackets = %d, want 400", got)
	}
	// Tiny BDP still yields at least 1 packet.
	if got := BDPPackets(1*Kbps, Millisecond, 1500); got != 1 {
		t.Fatalf("BDPPackets tiny = %d, want 1", got)
	}
}

func TestBDPPacketsRoundsUp(t *testing.T) {
	// 10 Mbps * 100 ms = 125,000 bytes = 83.33 packets -> 84.
	if got := BDPPackets(10*Mbps, 100*Millisecond, 1500); got != 84 {
		t.Fatalf("BDPPackets = %d, want 84", got)
	}
}

func TestBDPPacketsPanicsOnZeroPacket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BDPPackets(Mbps, Second, 0)
}

func TestTransmissionTimeMonotonic(t *testing.T) {
	f := func(b uint16) bool {
		n := int(b)
		return (Mbps).TransmissionTime(n+1) >= (Mbps).TransmissionTime(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	if s := (150 * Millisecond).String(); s != "150.000ms" {
		t.Errorf("Duration.String = %q", s)
	}
	if s := (32 * Mbps).String(); s != "32.000Mbps" {
		t.Errorf("Rate.String = %q", s)
	}
	if s := Time(1500 * int64(Millisecond)).String(); s != "1.500000s" {
		t.Errorf("Time.String = %q", s)
	}
}
