package learnability_test

import (
	"encoding/json"
	"testing"

	"learnability"
)

func TestFacadeUnits(t *testing.T) {
	if learnability.Second != 1000*learnability.Millisecond {
		t.Fatal("time unit relationships broken")
	}
	if learnability.Gbps != 1000*learnability.Mbps || learnability.Mbps != 1000*learnability.Kbps {
		t.Fatal("rate unit relationships broken")
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	algs := map[string]learnability.Algorithm{
		"cubic":   learnability.NewCubic(),
		"newreno": learnability.NewNewReno(),
		"vegas":   learnability.NewVegas(),
		"remycc":  learnability.NewRemyCC(learnability.NewWhiskerTree()),
		"masked":  learnability.NewRemyCCMasked(learnability.NewWhiskerTree(), learnability.AllSignals()),
	}
	for name, a := range algs {
		a.Reset(0)
		if a.Window() < 1 {
			t.Errorf("%s: initial window %v < 1", name, a.Window())
		}
	}
}

func TestFacadeScenarioRun(t *testing.T) {
	spec := learnability.Spec{
		Topology:  learnability.DumbbellTopology,
		LinkSpeed: 10 * learnability.Mbps,
		MinRTT:    100 * learnability.Millisecond,
		Buffering: learnability.FiniteDropTail,
		BufferBDP: 5,
		MeanOn:    learnability.Second,
		MeanOff:   learnability.Second,
		Duration:  10 * learnability.Second,
		Seed:      learnability.NewSeed(1),
		Senders: []learnability.SpecSender{
			{Alg: learnability.NewCubic(), Delta: 1},
			{Alg: learnability.NewNewReno(), Delta: 1},
		},
	}
	results, err := learnability.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	total := 0.0
	for _, r := range results {
		total += float64(r.Throughput)
		if r.Delay < r.MinRTT/2 {
			t.Errorf("flow %d delay %v below one-way propagation", r.Flow, r.Delay)
		}
	}
	// Throughput normalizes by on-time, so a flow draining its standing
	// queue during an off period can exceed the link rate slightly;
	// allow 25% headroom.
	if total <= 0 || total > 12.5e6 {
		t.Fatalf("combined throughput %v out of range", total)
	}
}

func TestFacadeTreeJSON(t *testing.T) {
	tree := learnability.NewWhiskerTree()
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back learnability.Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != tree.Len() {
		t.Fatal("round trip changed tree size")
	}
}

func TestFacadeTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr := &learnability.Trainer{
		Cfg: learnability.TrainConfig{
			Topology:     learnability.DumbbellTopology,
			LinkSpeedMin: 8 * learnability.Mbps,
			LinkSpeedMax: 12 * learnability.Mbps,
			MinRTTMin:    100 * learnability.Millisecond,
			MinRTTMax:    100 * learnability.Millisecond,
			SendersMin:   2,
			SendersMax:   2,
			MeanOn:       learnability.Second,
			MeanOff:      learnability.Second,
			Buffering:    learnability.FiniteDropTail,
			BufferBDP:    5,
			Delta:        1,
			Duration:     6 * learnability.Second,
			Replicas:     2,
		},
		Seed: 5,
	}
	tree := tr.Train(learnability.TrainBudget{Generations: 1, OptPasses: 1, MovesPerWhisker: 2})
	if tree.Len() < 1 {
		t.Fatal("training produced an empty tree")
	}
	// The trained protocol must drive traffic.
	spec := learnability.Spec{
		Topology:  learnability.DumbbellTopology,
		LinkSpeed: 10 * learnability.Mbps,
		MinRTT:    100 * learnability.Millisecond,
		Buffering: learnability.FiniteDropTail,
		BufferBDP: 5,
		MeanOn:    learnability.Second,
		MeanOff:   learnability.Second,
		Duration:  15 * learnability.Second,
		Seed:      learnability.NewSeed(2),
		Senders: []learnability.SpecSender{
			{Alg: learnability.NewRemyCC(tree), Delta: 1},
			{Alg: learnability.NewRemyCC(tree), Delta: 1},
		},
	}
	results, err := learnability.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if float64(results[0].Throughput)+float64(results[1].Throughput) <= 0 {
		t.Fatal("trained Tao moved no traffic")
	}
}
