// Quickstart: train a small Tao congestion-control protocol for a
// 10-100 Mbps dumbbell, then race it against TCP Cubic and NewReno on
// a network drawn from that range, printing throughput, delay, and the
// paper's objective for each.
package main

import (
	"fmt"
	"log"

	"learnability"
)

func main() {
	// 1. Describe the designer's (imperfect) model of the network:
	//    a dumbbell with two senders, 10-100 Mbps, 150 ms RTT,
	//    1-second on/off workload, 5 BDP of FIFO buffering.
	cfg := learnability.TrainConfig{
		Topology:     learnability.DumbbellTopology,
		LinkSpeedMin: 10 * learnability.Mbps,
		LinkSpeedMax: 100 * learnability.Mbps,
		MinRTTMin:    150 * learnability.Millisecond,
		MinRTTMax:    150 * learnability.Millisecond,
		SendersMin:   2,
		SendersMax:   2,
		MeanOn:       1 * learnability.Second,
		MeanOff:      1 * learnability.Second,
		Buffering:    learnability.FiniteDropTail,
		BufferBDP:    5,
		Delta:        1, // weigh throughput and delay equally
		Duration:     10 * learnability.Second,
		Replicas:     2,
	}

	// 2. Run the Remy search for a few generations.
	fmt.Println("training a Tao protocol (a few seconds)...")
	trainer := &learnability.Trainer{Cfg: cfg, Seed: 42}
	tao := trainer.Train(learnability.DefaultTrainBudget())
	fmt.Printf("trained a whisker tree with %d rules\n\n", tao.Len())

	// 3. Evaluate Tao, Cubic, and NewReno on a 32 Mbps draw from the
	//    design range.
	contenders := []struct {
		name string
		mk   func() learnability.Algorithm
	}{
		{"Tao", func() learnability.Algorithm { return learnability.NewRemyCC(tao) }},
		{"Cubic", learnability.NewCubic},
		{"NewReno", learnability.NewNewReno},
	}
	fmt.Printf("%-8s %14s %14s %14s\n", "protocol", "tpt/flow(Mbps)", "delay(ms)", "queue(ms)")
	for _, c := range contenders {
		spec := learnability.Spec{
			Topology:  learnability.DumbbellTopology,
			LinkSpeed: 32 * learnability.Mbps,
			MinRTT:    150 * learnability.Millisecond,
			Buffering: learnability.FiniteDropTail,
			BufferBDP: 5,
			MeanOn:    1 * learnability.Second,
			MeanOff:   1 * learnability.Second,
			Duration:  30 * learnability.Second,
			Seed:      learnability.NewSeed(7),
			Senders: []learnability.SpecSender{
				{Alg: c.mk(), Delta: 1},
				{Alg: c.mk(), Delta: 1},
			},
		}
		results, err := learnability.RunScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		var tpt, delay, queue float64
		for _, r := range results {
			tpt += float64(r.Throughput) / 1e6
			delay += r.Delay.Seconds() * 1e3
			queue += r.QueueDelay.Seconds() * 1e3
		}
		n := float64(len(results))
		fmt.Printf("%-8s %14.2f %14.1f %14.1f\n", c.name, tpt/n, delay/n, queue/n)
	}
	fmt.Println("\nThe Tao should match or beat the TCP baselines on throughput")
	fmt.Println("while keeping queueing delay an order of magnitude lower.")
}
