// Diversity: the paper's §4.6 question — can senders with different
// objectives share a link? It trains a throughput-sensitive protocol
// (delta = 0.1) and a delay-sensitive protocol (delta = 10) naively
// (each expecting copies of itself), puts them on the same no-drop
// bottleneck, and shows the delay-sensitive sender being buried under
// the throughput-sensitive sender's standing queue — the paper's
// motivation for co-optimization (Figure 9b; run
// `cmd/learnability -exp fig9` for the full co-optimized comparison).
package main

import (
	"fmt"
	"log"

	"learnability"
)

func trainFor(delta float64, name string) *learnability.Tree {
	fmt.Printf("training %s (delta = %g)...\n", name, delta)
	trainer := &learnability.Trainer{
		Cfg: learnability.TrainConfig{
			Topology:     learnability.DumbbellTopology,
			LinkSpeedMin: 10 * learnability.Mbps,
			LinkSpeedMax: 10 * learnability.Mbps,
			MinRTTMin:    100 * learnability.Millisecond,
			MinRTTMax:    100 * learnability.Millisecond,
			SendersMin:   1,
			SendersMax:   2,
			MeanOn:       1 * learnability.Second,
			MeanOff:      1 * learnability.Second,
			Buffering:    learnability.NoDrop,
			Delta:        delta,
			Duration:     10 * learnability.Second,
			Replicas:     2,
		},
		Seed: 31,
	}
	return trainer.Train(learnability.TrainBudget{Generations: 2, OptPasses: 1, MovesPerWhisker: 4})
}

func main() {
	tpt := trainFor(0.1, "throughput-sensitive sender")
	del := trainFor(10.0, "delay-sensitive sender")

	spec := learnability.Spec{
		Topology:  learnability.DumbbellTopology,
		LinkSpeed: 10 * learnability.Mbps,
		MinRTT:    100 * learnability.Millisecond,
		Buffering: learnability.NoDrop,
		MeanOn:    1 * learnability.Second,
		MeanOff:   1 * learnability.Second,
		Duration:  60 * learnability.Second,
		Seed:      learnability.NewSeed(37),
		Senders: []learnability.SpecSender{
			{Alg: learnability.NewRemyCC(tpt), Delta: 0.1},
			{Alg: learnability.NewRemyCC(del), Delta: 10},
		},
	}
	results, err := learnability.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"Tpt sender (delta=0.1)", "Del sender (delta=10)"}
	fmt.Println("\nnaively-trained senders sharing one no-drop bottleneck:")
	for i, r := range results {
		fmt.Printf("  %-24s tpt %5.2f Mbps   queueing delay %8.1f ms\n",
			names[i], float64(r.Throughput)/1e6, r.QueueDelay.Seconds()*1e3)
	}
	fmt.Println("\nBoth see the same queue, so the delay-sensitive sender inherits the")
	fmt.Println("throughput-sensitive sender's standing queue. The paper shows")
	fmt.Println("co-optimizing the two protocols fixes this (Figure 9).")
}
