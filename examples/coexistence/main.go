// Coexistence: the paper's §4.5 question — what does it cost to make
// a new protocol safe against incumbent TCP? It trains a TCP-naive Tao
// (whose world model says everyone runs the Tao) and a TCP-aware Tao
// (whose model says that half the time one contender is AIMD TCP),
// then measures both in a homogeneous network and head-to-head against
// NewReno on a 10 Mbps / 100 ms / 2 BDP dumbbell with near-continuous
// load.
package main

import (
	"fmt"
	"log"

	"learnability"
)

func trainTao(name string, aimdProb float64) *learnability.Tree {
	fmt.Printf("training %s...\n", name)
	trainer := &learnability.Trainer{
		Cfg: learnability.TrainConfig{
			Topology:     learnability.DumbbellTopology,
			LinkSpeedMin: 9 * learnability.Mbps,
			LinkSpeedMax: 11 * learnability.Mbps,
			MinRTTMin:    100 * learnability.Millisecond,
			MinRTTMax:    100 * learnability.Millisecond,
			SendersMin:   2,
			SendersMax:   2,
			AIMDProb:     aimdProb,
			MeanOn:       5 * learnability.Second,
			MeanOff:      10 * learnability.Millisecond,
			Buffering:    learnability.FiniteDropTail,
			BufferBDP:    2,
			Delta:        1,
			Duration:     10 * learnability.Second,
			Replicas:     2,
		},
		Seed: 11,
	}
	return trainer.Train(learnability.TrainBudget{Generations: 2, OptPasses: 1, MovesPerWhisker: 4})
}

func race(label string, mkA, mkB func() learnability.Algorithm, nameA, nameB string) {
	spec := learnability.Spec{
		Topology:  learnability.DumbbellTopology,
		LinkSpeed: 10 * learnability.Mbps,
		MinRTT:    100 * learnability.Millisecond,
		Buffering: learnability.FiniteDropTail,
		BufferBDP: 2,
		MeanOn:    5 * learnability.Second,
		MeanOff:   10 * learnability.Millisecond,
		Duration:  60 * learnability.Second,
		Seed:      learnability.NewSeed(23),
		Senders: []learnability.SpecSender{
			{Alg: mkA(), Delta: 1},
			{Alg: mkB(), Delta: 1},
		},
	}
	results, err := learnability.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s:\n", label)
	names := []string{nameA, nameB}
	for i, r := range results {
		fmt.Printf("  %-14s tpt %5.2f Mbps   queueing delay %6.1f ms\n",
			names[i], float64(r.Throughput)/1e6, r.QueueDelay.Seconds()*1e3)
	}
}

func main() {
	naive := trainTao("TCP-naive Tao", 0)
	aware := trainTao("TCP-aware Tao", 0.5)

	mkNaive := func() learnability.Algorithm { return learnability.NewRemyCC(naive) }
	mkAware := func() learnability.Algorithm { return learnability.NewRemyCC(aware) }

	race("homogeneous: TCP-naive Tao vs itself", mkNaive, mkNaive, "Tao-naive", "Tao-naive")
	race("homogeneous: TCP-aware Tao vs itself", mkAware, mkAware, "Tao-aware", "Tao-aware")
	race("mixed: TCP-naive Tao vs NewReno", mkNaive, learnability.NewNewReno, "Tao-naive", "NewReno")
	race("mixed: TCP-aware Tao vs NewReno", mkAware, learnability.NewNewReno, "Tao-aware", "NewReno")

	fmt.Println("\nThe paper's finding: TCP-awareness costs delay when playing against")
	fmt.Println("itself, but protects the Tao's share when TCP shows up (§4.5).")
}
