// Linkspeed: a small version of the paper's Figure 2 ("is there a
// tradeoff between operating range and performance?"). It trains a
// narrow-range Tao (22-44 Mbps) and a broad-range Tao (1-1000 Mbps),
// then sweeps the testing link speed and prints the normalized
// objective for both, plus Cubic, at each point. Expect the narrow Tao
// to win modestly inside 22-44 Mbps and fall off outside it, while the
// broad Tao stays usable everywhere.
package main

import (
	"fmt"
	"log"
	"math"

	"learnability"
)

func train(name string, lo, hi learnability.Rate) *learnability.Tree {
	fmt.Printf("training %s for %.0f-%.0f Mbps...\n", name, float64(lo)/1e6, float64(hi)/1e6)
	trainer := &learnability.Trainer{
		Cfg: learnability.TrainConfig{
			Topology:     learnability.DumbbellTopology,
			LinkSpeedMin: lo,
			LinkSpeedMax: hi,
			MinRTTMin:    150 * learnability.Millisecond,
			MinRTTMax:    150 * learnability.Millisecond,
			SendersMin:   2,
			SendersMax:   2,
			MeanOn:       1 * learnability.Second,
			MeanOff:      1 * learnability.Second,
			Buffering:    learnability.FiniteDropTail,
			BufferBDP:    5,
			Delta:        1,
			Duration:     10 * learnability.Second,
			Replicas:     2,
		},
		Seed: 9,
	}
	return trainer.Train(learnability.DefaultTrainBudget())
}

func main() {
	narrow := train("Tao-2x", 22*learnability.Mbps, 44*learnability.Mbps)
	broad := train("Tao-1000x", 1*learnability.Mbps, 1000*learnability.Mbps)

	contenders := []struct {
		name string
		mk   func() learnability.Algorithm
	}{
		{"Tao-2x", func() learnability.Algorithm { return learnability.NewRemyCC(narrow) }},
		{"Tao-1000x", func() learnability.Algorithm { return learnability.NewRemyCC(broad) }},
		{"Cubic", learnability.NewCubic},
	}

	speeds := []float64{1, 4, 16, 32, 64, 250, 1000} // Mbps
	fmt.Printf("\n%-12s", "speed(Mbps)")
	for _, c := range contenders {
		fmt.Printf(" %12s", c.name)
	}
	fmt.Println("   (mean log(tpt) - log(delay), higher is better)")

	for _, mbps := range speeds {
		fmt.Printf("%-12.0f", mbps)
		for _, c := range contenders {
			spec := learnability.Spec{
				Topology:  learnability.DumbbellTopology,
				LinkSpeed: learnability.Rate(mbps) * learnability.Mbps,
				MinRTT:    150 * learnability.Millisecond,
				Buffering: learnability.FiniteDropTail,
				BufferBDP: 5,
				MeanOn:    1 * learnability.Second,
				MeanOff:   1 * learnability.Second,
				Duration:  20 * learnability.Second,
				Seed:      learnability.NewSeed(uint64(mbps)),
				Senders: []learnability.SpecSender{
					{Alg: c.mk(), Delta: 1},
					{Alg: c.mk(), Delta: 1},
				},
			}
			obj, n := 0.0, 0
			results, err := learnability.RunScenario(spec)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range results {
				if r.OnTime == 0 {
					continue
				}
				obj += math.Log(float64(r.Throughput)) - math.Log(r.Delay.Seconds())
				n++
			}
			if n > 0 {
				obj /= float64(n)
			}
			fmt.Printf(" %12.3f", obj)
		}
		fmt.Println()
	}
}
