// Signals: watch the four congestion signals of §3.3 evolve inside a
// running Tao protocol. A trained Tao shares a 16 Mbps dumbbell with a
// Cubic sender; every 500 ms of simulated time a probe prints the
// Tao's memory (rec_ewma, slow_rec_ewma, send_ewma, rtt_ratio),
// showing what the protocol can "see": the short- and long-term ACK
// arrival dynamics and the queueing along the path. Watch rtt_ratio
// climb as Cubic fills the buffer.
package main

import (
	"fmt"
	"log"

	"learnability"
)

func main() {
	fmt.Println("training a Tao (a few seconds)...")
	trainer := &learnability.Trainer{
		Cfg: learnability.TrainConfig{
			Topology:     learnability.DumbbellTopology,
			LinkSpeedMin: 8 * learnability.Mbps,
			LinkSpeedMax: 32 * learnability.Mbps,
			MinRTTMin:    150 * learnability.Millisecond,
			MinRTTMax:    150 * learnability.Millisecond,
			SendersMin:   2,
			SendersMax:   2,
			MeanOn:       learnability.Second,
			MeanOff:      learnability.Second,
			Buffering:    learnability.FiniteDropTail,
			BufferBDP:    5,
			Delta:        1,
			Duration:     8 * learnability.Second,
			Replicas:     2,
		},
		Seed: 99,
	}
	tao := trainer.Train(learnability.DefaultTrainBudget())

	taoAlg := learnability.NewRemyCC(tao)
	fmt.Printf("\n%8s %13s %13s %14s %10s\n",
		"t (s)", "rec_ewma(ms)", "slow_rec(ms)", "send_ewma(ms)", "rtt_ratio")
	spec := learnability.Spec{
		Topology:  learnability.DumbbellTopology,
		LinkSpeed: 16 * learnability.Mbps,
		MinRTT:    150 * learnability.Millisecond,
		Buffering: learnability.FiniteDropTail,
		BufferBDP: 5,
		MeanOn:    2 * learnability.Second,
		MeanOff:   200 * learnability.Millisecond,
		Duration:  10 * learnability.Second,
		Seed:      learnability.NewSeed(4),
		Senders: []learnability.SpecSender{
			{Alg: taoAlg, Delta: 1},
			{Alg: learnability.NewCubic(), Delta: 1},
		},
		ProbeInterval: 500 * learnability.Millisecond,
		Probe: func(now learnability.Time) {
			if v, ok := learnability.TaoSignals(taoAlg); ok {
				fmt.Printf("%8.1f %13.2f %13.2f %14.2f %10.2f\n",
					now.Seconds(), v[0]*1e3, v[1]*1e3, v[2]*1e3, v[3])
			}
		},
	}
	results, err := learnability.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfinal per-flow results:")
	names := []string{"Tao", "Cubic"}
	for i, r := range results {
		fmt.Printf("  %-6s tpt %5.2f Mbps   delay %6.1f ms (queueing %5.1f ms)\n",
			names[i], float64(r.Throughput)/1e6,
			r.Delay.Seconds()*1e3, r.QueueDelay.Seconds()*1e3)
	}
	fmt.Println("\nrtt_ratio > 1 means a standing queue: the Tao sees the Cubic")
	fmt.Println("sender's buffer occupancy through its own ACK stream.")
}
