// Parking-lot sweep: run TCP Cubic over the N-hop parking-lot family
// (the paper's §4.4 two-bottleneck topology generalized to N
// bottlenecks in series, with one cross-traffic flow per link) and
// watch the long flow's throughput collapse as it pays at every
// bottleneck while its fair share stays flat. This is the scenario
// space the paper could not pose: training and testing beyond the
// dumbbell and the fixed two-hop lot.
package main

import (
	"fmt"
	"log"

	"learnability"
)

func main() {
	fmt.Println("N-hop parking lot, 12 Mbps links, 300 ms long-flow RTT, Cubic everywhere.")
	fmt.Println("Flow 0 crosses every hop; each link also carries one single-hop cross flow.")
	fmt.Println()
	fmt.Printf("%-6s %18s %18s %16s %14s\n",
		"hops", "long tpt (Mbps)", "long share (Mbps)", "cross tpt (Mbps)", "long delay(ms)")

	for hops := 2; hops <= 5; hops++ {
		spec := learnability.Spec{
			Topology:  learnability.ParkingLotN(hops, true),
			LinkSpeed: 12 * learnability.Mbps,
			MinRTT:    300 * learnability.Millisecond,
			Buffering: learnability.FiniteDropTail,
			BufferBDP: 2,
			MeanOn:    1 * learnability.Second,
			MeanOff:   1 * learnability.Second,
			Duration:  60 * learnability.Second,
			Seed:      learnability.NewSeed(uint64(hops)),
		}
		// One long flow plus one cross flow per hop, in that order.
		for i := 0; i < 1+hops; i++ {
			spec.Senders = append(spec.Senders, learnability.SpecSender{
				Alg: learnability.NewCubic(), Delta: 1,
			})
		}
		results, err := learnability.RunScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		long := results[0]
		crossTpt := 0.0
		for _, r := range results[1:] {
			crossTpt += float64(r.Throughput) / 1e6
		}
		fmt.Printf("%-6d %18.2f %18.2f %16.2f %14.1f\n",
			hops,
			float64(long.Throughput)/1e6,
			float64(long.FairShare)/1e6,
			crossTpt/float64(hops),
			long.Delay.Seconds()*1e3)
	}

	fmt.Println()
	fmt.Println("Each added bottleneck taxes the long flow again (and stretches its")
	fmt.Println("control loop), while single-hop cross flows keep their local share.")
}
