// Fat-tree routing-policy comparison: run the same 4-to-1 incast on a
// k=4 fat-tree (16 hosts, 96 directed links, up to four equal-cost
// paths per flow) under each multipath routing policy and compare what
// the receivers see. ECMP pins each flow to one hash-chosen path;
// SPRAY round-robins every packet across the equal-cost set (more
// capacity, but reordered arrivals the SACK scoreboard must absorb);
// ADAPTIVE sends each packet to the least-backlogged candidate. This
// is topology territory the paper's dumbbell-trained protocols never
// saw — the substrate PR 7 adds for training Tao beyond single-path
// networks.
package main

import (
	"fmt"
	"log"

	"learnability"
)

func main() {
	const k, incast = 4, 4
	fmt.Printf("k=%d fat-tree, %d-to-1 incast, 40 Mbps links, Cubic senders, 60 s.\n", k, incast)
	fmt.Println("Same seed and workload under each multipath routing policy.")
	fmt.Println()
	fmt.Printf("%-10s %16s %16s %14s\n", "routing", "sum tpt (Mbps)", "min tpt (Mbps)", "mean delay(ms)")

	for _, pol := range []learnability.RoutingPolicy{
		learnability.ECMP, learnability.Spray, learnability.Adaptive,
	} {
		topo := learnability.FatTreeIncast(k, incast, pol)
		spec := learnability.Spec{
			Topology:  topo,
			LinkSpeed: 40 * learnability.Mbps,
			MinRTT:    120 * learnability.Millisecond,
			Buffering: learnability.FiniteDropTail,
			BufferBDP: 2,
			MeanOn:    1 * learnability.Second,
			MeanOff:   1 * learnability.Second,
			Duration:  60 * learnability.Second,
			Seed:      learnability.NewSeed(7),
		}
		for i := 0; i < topo.FlowCount(0); i++ {
			spec.Senders = append(spec.Senders, learnability.SpecSender{
				Alg: learnability.NewCubic(), Delta: 1,
			})
		}
		results, err := learnability.RunScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		var sum, min, delay float64
		for i, r := range results {
			tpt := float64(r.Throughput) / 1e6
			sum += tpt
			if i == 0 || tpt < min {
				min = tpt
			}
			delay += r.Delay.Seconds() * 1e3
		}
		fmt.Printf("%-10s %16.2f %16.2f %14.1f\n",
			pol, sum, min, delay/float64(len(results)))
	}

	fmt.Println()
	fmt.Println("All four flows converge on one host downlink, so total throughput is")
	fmt.Println("bottleneck-bound under every policy; the policies differ in how they")
	fmt.Println("load the spine and in how much reordering the receivers absorb.")
}
